// Benchmarks regenerating the measured quantity behind every table and
// figure in the paper's evaluation (§4). Tables used by the tuned solvers
// are trained once (on the deterministic Harpertown model so results are
// machine-independent); the benchmarks then time real executions on the
// host. Run with:
//
//	go test -bench=. -benchmem
package pbmg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pbmg/internal/arch"
	"pbmg/internal/core"
	"pbmg/internal/experiments"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/problem"
	"pbmg/internal/refsol"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
	"pbmg/internal/transfer"
)

// benchLevel is the grid level most solve benchmarks run at (N = 129).
const benchLevel = 7

var benchState struct {
	once    sync.Once
	err     error
	tuned   *core.Tuned           // V+F tables, unbiased
	heur    map[string]*mg.VTable // Figure 7 heuristic tables, biased
	tunedB  *core.Tuned           // V+F tables, biased
	probs   map[string]*problem.Problem
	iterCap map[string]int
}

// benchInit trains all tables and test problems once per process.
func benchInit(b *testing.B) {
	b.Helper()
	benchState.once.Do(func() {
		benchState.probs = map[string]*problem.Problem{}
		benchState.iterCap = map[string]int{}
		mk := func(dist grid.Distribution) (*core.Tuned, error) {
			tn, err := core.New(core.Config{
				MaxLevel:     benchLevel + 1,
				Distribution: dist,
				Seed:         20090101,
				Coster:       arch.WallClock{},
			})
			if err != nil {
				return nil, err
			}
			return tn.Tune()
		}
		if benchState.tuned, benchState.err = mk(grid.Unbiased); benchState.err != nil {
			return
		}
		if benchState.tunedB, benchState.err = mk(grid.Biased); benchState.err != nil {
			return
		}
		tn, err := core.New(core.Config{
			MaxLevel:     benchLevel + 1,
			Distribution: grid.Biased,
			Seed:         20090101,
			Coster:       arch.WallClock{},
		})
		if err != nil {
			benchState.err = err
			return
		}
		benchState.heur = map[string]*mg.VTable{}
		for _, sub := range []float64{1e1, 1e5, 1e9} {
			vt, err := tn.TuneHeuristic(sub, 1e9)
			if err != nil {
				benchState.err = err
				return
			}
			benchState.heur[core.HeuristicName(sub, 1e9)] = vt
		}
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
}

// benchProblem returns a cached test problem with reference solution.
func benchProblem(b *testing.B, level int, dist grid.Distribution) *problem.Problem {
	return benchInstance(b, "test", 17, level, dist)
}

// benchCalib returns the calibration instance reference algorithms commit
// their iteration counts on (distinct from training and test data).
func benchCalib(b *testing.B, level int, dist grid.Distribution) *problem.Problem {
	return benchInstance(b, "calib", 7919, level, dist)
}

func benchInstance(b *testing.B, kind string, salt, level int, dist grid.Distribution) *problem.Problem {
	b.Helper()
	benchInit(b)
	key := fmt.Sprintf("%s/%d/%s", kind, level, dist)
	p, ok := benchState.probs[key]
	if !ok {
		p = problem.Random(grid.SizeOfLevel(level), dist, rand.New(rand.NewSource(int64(level*salt)+int64(dist))))
		refsol.Attach(p, nil)
		benchState.probs[key] = p
	}
	return p
}

// --- §2 complexity table -------------------------------------------------

// BenchmarkComplexityTable times one solve-to-1e9 of each basic algorithm
// at N=65, the regime where all three are practical (§2 table).
func BenchmarkComplexityTable(b *testing.B) {
	p := benchProblem(b, 6, grid.Unbiased)
	ws := mg.NewWorkspace(nil)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := p.NewState()
			ws.SolveDirect(x, p.B, nil) // fresh factor: the DPBSV cost profile
		}
	})
	b.Run("sor", func(b *testing.B) {
		omega := stencil.OmegaOpt(p.N)
		x := p.NewState()
		iters, _ := mg.IterateUntil(1e9, 100000,
			func() { stencil.SORSweepRB(nil, x, p.B, p.H, omega) },
			func() float64 { return p.AccuracyOf(x) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			y := p.NewState()
			for it := 0; it < iters; it++ {
				stencil.SORSweepRB(nil, y, p.B, p.H, omega)
			}
		}
	})
	b.Run("multigrid", func(b *testing.B) {
		x := p.NewState()
		iters, _ := ws.SolveRefV(x, p.B, 1e9, 100, func() float64 { return p.AccuracyOf(x) }, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			y := p.NewState()
			for it := 0; it < iters; it++ {
				ws.RefVCycle(y, p.B, nil)
			}
		}
	})
}

// --- Figure 6: basic algorithms vs autotuned at accuracy 1e9 -------------

func BenchmarkFig6AutotunedV(b *testing.B) {
	p := benchProblem(b, benchLevel, grid.Unbiased)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	ex := &mg.Executor{WS: ws, V: benchState.tuned.V}
	accIdx := len(benchState.tuned.V.Acc) - 1 // 1e9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := p.NewState()
		ex.SolveV(x, p.B, accIdx)
	}
}

func BenchmarkFig6ReferenceMultigrid(b *testing.B) {
	p := benchProblem(b, benchLevel, grid.Unbiased)
	calib := benchCalib(b, benchLevel, grid.Unbiased)
	ws := mg.NewWorkspace(nil)
	x := calib.NewState()
	iters, _ := ws.SolveRefV(x, calib.B, 1e9, 100, func() float64 { return calib.AccuracyOf(x) }, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := p.NewState()
		for it := 0; it < iters; it++ {
			ws.RefVCycle(y, p.B, nil)
		}
	}
}

// --- Figures 7/8: heuristic strategies vs autotuned ----------------------

func BenchmarkFig7Heuristics(b *testing.B) {
	p := benchProblem(b, benchLevel, grid.Biased)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	for name, vt := range benchState.heur {
		b.Run(name, func(b *testing.B) {
			ex := &mg.Executor{WS: ws, V: vt}
			top := len(vt.Acc) - 1
			for i := 0; i < b.N; i++ {
				x := p.NewState()
				ex.SolveV(x, p.B, top)
			}
		})
	}
	b.Run("autotuned", func(b *testing.B) {
		ex := &mg.Executor{WS: ws, V: benchState.tunedB.V}
		top := len(benchState.tunedB.V.Acc) - 1
		for i := 0; i < b.N; i++ {
			x := p.NewState()
			ex.SolveV(x, p.B, top)
		}
	})
}

// --- Figure 9: parallel speedup ------------------------------------------

func BenchmarkFig9Speedup(b *testing.B) {
	p := benchProblem(b, benchLevel+1, grid.Unbiased) // N=257, above the parallel threshold
	accIdx := len(benchState.tuned.V.Acc) - 1
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var pool *sched.Pool
			if workers > 1 {
				pool = sched.NewPool(workers)
				defer pool.Close()
			}
			ws := mg.NewWorkspace(pool)
			ws.CacheDirectFactor = true
			ex := &mg.Executor{WS: ws, V: benchState.tuned.V}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := p.NewState()
				ex.SolveV(x, p.B, accIdx)
			}
		})
	}
}

// --- Figures 10–13: tuned vs reference algorithms ------------------------

// benchRelative times the four algorithms of Figures 10–13 at one
// (accuracy, distribution) cell on the host machine.
func benchRelative(b *testing.B, target float64, dist grid.Distribution, bundle func() *core.Tuned) {
	p := benchProblem(b, benchLevel, dist)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	accIdx := 0
	for i, a := range bundle().V.Acc {
		if a >= target {
			accIdx = i
			break
		}
	}
	calib := benchCalib(b, benchLevel, dist)
	b.Run("referenceV", func(b *testing.B) {
		x := calib.NewState()
		iters, _ := ws.SolveRefV(x, calib.B, target, 200, func() float64 { return calib.AccuracyOf(x) }, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			y := p.NewState()
			for it := 0; it < iters; it++ {
				ws.RefVCycle(y, p.B, nil)
			}
		}
	})
	b.Run("referenceFullMG", func(b *testing.B) {
		x := calib.NewState()
		iters, _ := ws.SolveRefFullMG(x, calib.B, target, 200, func() float64 { return calib.AccuracyOf(x) }, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			y := p.NewState()
			ws.RefFullMG(y, p.B, nil)
			for it := 1; it < iters; it++ {
				ws.RefVCycle(y, p.B, nil)
			}
		}
	})
	b.Run("autotunedV", func(b *testing.B) {
		ex := &mg.Executor{WS: ws, V: bundle().V}
		for i := 0; i < b.N; i++ {
			x := p.NewState()
			ex.SolveV(x, p.B, accIdx)
		}
	})
	b.Run("autotunedFullMG", func(b *testing.B) {
		ex := &mg.Executor{WS: ws, V: bundle().V, F: bundle().F}
		for i := 0; i < b.N; i++ {
			x := p.NewState()
			ex.SolveFull(x, p.B, accIdx)
		}
	})
}

func BenchmarkFig10(b *testing.B) {
	benchInit(b)
	benchRelative(b, 1e5, grid.Unbiased, func() *core.Tuned { return benchState.tuned })
}

func BenchmarkFig11(b *testing.B) {
	benchInit(b)
	benchRelative(b, 1e5, grid.Biased, func() *core.Tuned { return benchState.tunedB })
}

func BenchmarkFig12(b *testing.B) {
	benchInit(b)
	benchRelative(b, 1e9, grid.Unbiased, func() *core.Tuned { return benchState.tuned })
}

func BenchmarkFig13(b *testing.B) {
	benchInit(b)
	benchRelative(b, 1e9, grid.Biased, func() *core.Tuned { return benchState.tunedB })
}

// --- Figures 4/5/14: shape extraction and rendering ----------------------

func BenchmarkFig5CycleRender(b *testing.B) {
	p := benchProblem(b, benchLevel, grid.Unbiased)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	for i := 0; i < b.N; i++ {
		var log mg.ShapeLog
		ex := &mg.Executor{WS: ws, V: benchState.tuned.V, Rec: &log}
		x := p.NewState()
		ex.SolveV(x, p.B, 2)
		if s := mg.RenderShape(&log); len(s) == 0 {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkFig4Describe(b *testing.B) {
	benchInit(b)
	for i := 0; i < b.N; i++ {
		if s := mg.DescribeV(benchState.tuned.V, benchLevel+1, 3); len(s) == 0 {
			b.Fatal("empty description")
		}
	}
}

// --- §4.3 cross-training and the tuner itself ----------------------------

// BenchmarkCrossTrainEvaluation times pricing one tuned execution under a
// foreign cost model, the unit of the §4.3 portability study.
func BenchmarkCrossTrainEvaluation(b *testing.B) {
	p := benchProblem(b, benchLevel, grid.Unbiased)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	model := arch.Niagara()
	for i := 0; i < b.N; i++ {
		var tr mg.OpTrace
		ex := &mg.Executor{WS: ws, V: benchState.tuned.V, F: benchState.tuned.F, Rec: &tr}
		x := p.NewState()
		ex.SolveFull(x, p.B, 2)
		if model.Cost(&tr, 0) <= 0 {
			b.Fatal("non-positive cost")
		}
	}
}

// BenchmarkTuner times a complete dynamic-programming tuning run (V and
// full-MG tables) at a small level under a deterministic cost model.
func BenchmarkTuner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tn, err := core.New(core.Config{
			MaxLevel:     5,
			Distribution: grid.Unbiased,
			Seed:         int64(i),
			Coster:       arch.Barcelona(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tn.Tune(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentPipeline runs the full Figure 10 pipeline (tune three
// machines, price four algorithms per size) at a reduced level.
func BenchmarkExperimentPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Opts{MaxLevel: 4, Seed: int64(i + 1)})
		if _, err := r.Fig10(); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// --- serving path: one tuned solver, many concurrent clients -------------

// BenchmarkSolveConcurrent measures multi-client throughput on one shared
// tuned solver, the serving configuration behind SolveBatch and Service:
// tuned tables, direct-factor cache, and scratch arena are shared while
// clients solve independent requests. Kernels run serially (pool nil) so
// scaling comes purely from solve-level concurrency; on a machine with ≥4
// CPUs the 4-client case should show ≥2× the single-client throughput.
func BenchmarkSolveConcurrent(b *testing.B) {
	benchInit(b)
	p := benchProblem(b, benchLevel, grid.Unbiased)
	target := benchState.tuned.V.Acc[len(benchState.tuned.V.Acc)-1] // 1e9
	for _, clients := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("clients-%d", clients), func(b *testing.B) {
			s, err := newSolver(benchState.tuned, nil)
			if err != nil {
				b.Fatal(err)
			}
			// Warm the factor cache so the timed region is steady-state serving.
			warm := p.NewState()
			if err := s.Solve(warm, p.B, target); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := c; i < b.N; i += clients {
						x := p.NewState()
						if err := s.Solve(x, p.B, target); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		})
	}
}

// --- kernel microbenchmarks (the substrate everything rests on) ----------

func BenchmarkKernels(b *testing.B) {
	p := benchProblem(b, benchLevel+1, grid.Unbiased)
	n := p.N
	h := p.H
	x := p.NewState()
	r := grid.New(n)
	coarse := grid.New((n + 1) / 2)
	b.Run("sor-sweep", func(b *testing.B) {
		b.SetBytes(int64(n * n * 8))
		for i := 0; i < b.N; i++ {
			stencil.SORSweepRB(nil, x, p.B, h, 1.15)
		}
	})
	b.Run("residual", func(b *testing.B) {
		b.SetBytes(int64(n * n * 8))
		for i := 0; i < b.N; i++ {
			stencil.Residual(nil, r, x, p.B, h)
		}
	})
	b.Run("restrict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			transfer.Restrict(nil, coarse, r)
		}
	})
	b.Run("interpolate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			transfer.Interpolate(nil, r, coarse)
		}
	})
	b.Run("direct-factor-solve-65", func(b *testing.B) {
		p65 := benchProblem(b, 6, grid.Unbiased)
		ws := mg.NewWorkspace(nil)
		for i := 0; i < b.N; i++ {
			y := p65.NewState()
			ws.SolveDirect(y, p65.B, nil)
		}
	})
}
