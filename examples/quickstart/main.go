// Quickstart: tune a solver for this machine, solve a random Poisson
// problem at two accuracy requirements, and show the tuned cycle shapes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"pbmg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	const size = 129 // grid side, 2^7 + 1

	// Tune for the host machine. In a real deployment you would do this
	// once and Save/Load the configuration.
	start := time.Now()
	solver, err := pbmg.Tune(pbmg.Options{
		MaxSize:      size,
		Distribution: pbmg.Unbiased,
		Workers:      runtime.NumCPU(),
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer solver.Close()
	fmt.Printf("tuned for %s up to N=%d in %v\n\n", solver.Machine(), size, time.Since(start).Round(time.Millisecond))

	// A random problem from the paper's unbiased distribution.
	p := pbmg.NewProblem(size, pbmg.Unbiased, 42)
	pbmg.Reference(p) // compute the exact solution so we can grade ourselves

	for _, accuracy := range []float64{1e3, 1e9} {
		x := p.NewState()
		start = time.Now()
		if err := solver.Solve(x, p.B, accuracy); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("accuracy %8.0e: solved in %10v, achieved %.3g\n",
			accuracy, elapsed.Round(time.Microsecond), p.AccuracyOf(x))
	}

	// The tuned algorithm is a cycle shape, not a fixed V: show how it
	// differs between a crude and a precise solve.
	fmt.Println("\ntuned cycle for accuracy 1e3 (o relax, \\ restrict, / interpolate, D direct, ~k~ SOR):")
	shape, err := solver.CycleShape(size, 1e3, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(shape)
	fmt.Println("\ntuned cycle for accuracy 1e9:")
	if shape, err = solver.CycleShape(size, 1e9, true); err != nil {
		log.Fatal(err)
	}
	fmt.Print(shape)
}
