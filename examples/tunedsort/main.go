// Tunedsort: the paper's motivating example of algorithmic choice (§1) —
// a sort that switches from O(n log n) merge sort to O(n²) insertion sort
// below a machine-tuned cutoff — expressed with the generic PetaBricks-style
// framework (internal/pbx) that also underlies the multigrid tuner.
//
// The example tunes the cutoff two ways: with the bottom-up population
// autotuner over rule selectors (§3.2.2), and with the n-ary scalar search
// PetaBricks uses for cutoff-style parameters.
//
// Run with:
//
//	go run ./examples/tunedsort
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"pbmg/internal/pbx"
)

func buildTransform() *pbx.Transform[[]int] {
	t := &pbx.Transform[[]int]{
		Name: "sort",
		Size: func(s []int) int { return len(s) },
	}
	t.Rules = []pbx.Rule[[]int]{
		{
			Name: "insertion",
			Apply: func(self *pbx.Instance[[]int], s []int) {
				for i := 1; i < len(s); i++ {
					v := s[i]
					j := i - 1
					for j >= 0 && s[j] > v {
						s[j+1] = s[j]
						j--
					}
					s[j+1] = v
				}
			},
		},
		{
			Name: "merge",
			Apply: func(self *pbx.Instance[[]int], s []int) {
				if len(s) < 2 {
					return
				}
				mid := len(s) / 2
				left := append([]int(nil), s[:mid]...)
				right := append([]int(nil), s[mid:]...)
				self.Run(left) // recursion re-dispatches: cutoffs apply here
				self.Run(right)
				i, j := 0, 0
				for k := range s {
					if i < len(left) && (j >= len(right) || left[i] <= right[j]) {
						s[k] = left[i]
						i++
					} else {
						s[k] = right[j]
						j++
					}
				}
			},
		},
	}
	return t
}

func randomSlice(rng *rand.Rand, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = rng.Intn(1 << 30)
	}
	return s
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tunedsort: ")
	tr := buildTransform()

	// 1) Population autotuner over rule selectors.
	sel, err := pbx.Tune(pbx.TuneConfig[[]int]{
		Transform: tr,
		Gen:       randomSlice,
		Clone:     func(s []int) []int { return append([]int(nil), s...) },
		Sizes:     []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096},
		Trials:    5,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population tuner chose: top rule %q", tr.Rules[sel.Top].Name)
	for _, l := range sel.Levels {
		fmt.Printf(", %q for sizes ≤ %d", tr.Rules[l.Rule].Name, l.MaxSize)
	}
	fmt.Println()

	// 2) N-ary search over the cutoff parameter directly.
	rng := rand.New(rand.NewSource(2))
	inputs := make([][]int, 8)
	for i := range inputs {
		inputs[i] = randomSlice(rng, 1<<14)
	}
	bench := func(cutoff int) float64 {
		s := &pbx.Selector{Levels: []pbx.Level{{MaxSize: cutoff, Rule: tr.RuleIndex("insertion")}}, Top: tr.RuleIndex("merge")}
		inst := pbx.NewInstance(tr, s, nil)
		start := time.Now()
		for _, in := range inputs {
			data := append([]int(nil), in...)
			inst.Run(data)
		}
		return time.Since(start).Seconds()
	}
	cutoff := pbx.NarySearch(2, 512, 4, bench)
	fmt.Printf("n-ary search chose insertion-sort cutoff %d\n", cutoff)

	// Compare the tuned hybrid against its pure ingredients.
	tuned := pbx.NewInstance(tr, &pbx.Selector{
		Levels: []pbx.Level{{MaxSize: cutoff, Rule: tr.RuleIndex("insertion")}},
		Top:    tr.RuleIndex("merge"),
	}, nil)
	pureMerge := pbx.NewInstance(tr, &pbx.Selector{Top: tr.RuleIndex("merge")}, nil)

	data := randomSlice(rng, 1<<16)
	timeOf := func(inst *pbx.Instance[[]int]) time.Duration {
		d := append([]int(nil), data...)
		start := time.Now()
		inst.Run(d)
		if !sort.IntsAreSorted(d) {
			log.Fatal("result not sorted")
		}
		return time.Since(start)
	}
	tm, tt := timeOf(pureMerge), timeOf(tuned)
	fmt.Printf("sorting 65536 ints: pure merge %v, tuned hybrid %v (%.2fx)\n",
		tm.Round(time.Microsecond), tt.Round(time.Microsecond), float64(tm)/float64(tt))
}
