// Crossarch: reproduce the paper's §4.3 portability result in miniature —
// tune the same multigrid problem for three different machines and watch
// the optimal cycle shape change with the architecture, then measure the
// penalty of running a cycle tuned for the wrong machine.
//
// Run with:
//
//	go run ./examples/crossarch
package main

import (
	"fmt"
	"log"

	"pbmg/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crossarch: ")

	r := experiments.NewRunner(experiments.Opts{
		MaxLevel: 7, // N = 129; raise for closer-to-paper shapes
		Seed:     2009,
	})
	defer r.Close()

	fmt.Println("tuning the 2D Poisson solver for three simulated machines...")
	shapes, err := r.Fig14()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(shapes)

	fmt.Println("penalty for running a cycle tuned on machine A on machine B:")
	table, err := r.CrossTrain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.String())
	fmt.Println("reading: each row is where the algorithm was tuned; each column is")
	fmt.Println("where it runs. Off-diagonal entries above 1.0 are the slowdown the")
	fmt.Println("paper observed when porting tuned cycles between machines (§4.3).")
}
