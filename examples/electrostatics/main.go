// Electrostatics: compute the potential field of point charges in a
// grounded box — one of the physical processes Poisson's equation describes
// (§2 of the paper) — and compare the autotuned solver against the textbook
// iterated V-cycle on the same problem.
//
// The domain is the unit square with the boundary held at zero potential
// (a grounded box); charges appear as point sources in the right-hand side.
//
// Run with:
//
//	go run ./examples/electrostatics
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"pbmg"
)

const size = 129

// charge is a point charge at grid coordinates (i, j).
type charge struct {
	i, j int
	q    float64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("electrostatics: ")

	charges := []charge{
		{i: size / 4, j: size / 4, q: +1},
		{i: 3 * size / 4, j: 3 * size / 4, q: +1},
		{i: size / 4, j: 3 * size / 4, q: -1},
		{i: 3 * size / 4, j: size / 4, q: -1},
	}
	// Assemble −∇²φ = ρ: charges become delta functions scaled by cell area.
	b := pbmg.NewGrid(size)
	h := 1.0 / float64(size-1)
	for _, c := range charges {
		b.Set(c.i, c.j, c.q/(h*h))
	}

	solver, err := pbmg.Tune(pbmg.Options{
		MaxSize:      size,
		Distribution: pbmg.PointSources, // train on data shaped like the workload
		Workers:      runtime.NumCPU(),
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer solver.Close()

	phi := pbmg.NewGrid(size) // zero boundary: grounded box
	start := time.Now()
	if err := solver.Solve(phi, b, 1e7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved %d-charge potential on %dx%d grid in %v\n",
		len(charges), size, size, time.Since(start).Round(time.Microsecond))

	// Sanity physics: the potential must peak near the positive charges and
	// dip near the negative ones.
	fmt.Println("\npotential along the main diagonal (+q at 1/4, −q region influence visible):")
	for frac := 1; frac <= 7; frac++ {
		i := frac * size / 8
		fmt.Printf("  φ(%.3f, %.3f) = %+.4f\n", float64(i)*h, float64(i)*h, phi.At(i, i))
	}
	quadrupole := phi.At(size/4, size/4) - phi.At(size/4, 3*size/4)
	if quadrupole <= 0 {
		log.Fatal("potential does not separate positive and negative charges")
	}

	// Render a coarse contour map of the field.
	fmt.Println("\nfield map (+/− is sign, letter depth is magnitude):")
	max := 0.0
	for _, v := range phi.Data() {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	const rows = 17
	for r := 0; r < rows; r++ {
		i := r * (size - 1) / (rows - 1)
		line := make([]byte, 0, 2*rows)
		for c := 0; c < rows; c++ {
			j := c * (size - 1) / (rows - 1)
			v := phi.At(i, j) / max
			line = append(line, glyph(v), ' ')
		}
		fmt.Printf("  %s\n", line)
	}
}

// glyph maps a normalized potential to a character.
func glyph(v float64) byte {
	a := math.Abs(v)
	var depth byte
	switch {
	case a < 0.02:
		return '.'
	case a < 0.1:
		depth = 'a'
	case a < 0.3:
		depth = 'b'
	default:
		depth = 'c'
	}
	if v > 0 {
		return depth - 'a' + 'A'
	}
	return depth
}
